"""The asyncio control-plane daemon.

:class:`AllocationDaemon` listens on TCP, speaks the NDJSON protocol of
:mod:`repro.serve.protocol`, and drives a :class:`ServeState` fleet.
Three serving behaviours matter beyond plain dispatch:

* **Request coalescing.**  Solver calls are the expensive path, so
  concurrent ``allocate`` queries against the same rack and (quantized)
  budget share one in-flight solve: the first query computes in a
  worker thread, the rest await its future.  Together with the
  :class:`~repro.core.solver.PARSolver` memo cache this means a burst
  of duplicate queries costs one solve.
* **Single-writer racks.**  All controller-mutating work (solves,
  epochs, checkpoints) runs through a per-rack ``asyncio.Lock`` and the
  default thread-pool executor, so the event loop keeps accepting
  connections while a rack computes, and no rack sees two mutations at
  once.
* **Shutdown-with-checkpoint.**  ``SIGTERM``/``SIGINT`` (or the
  ``shutdown`` op) stop the listener, take every rack lock, write a
  final checkpoint, and close the audit stream — the restartable
  shutdown the paper's always-on deployment needs.

The JSONL audit stream records every executed epoch (in
:func:`repro.sim.telemetry.record_to_dict` form, with solver-cache
counters attached) plus start/checkpoint/stop events.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import threading
from pathlib import Path
from typing import Any, TextIO

from time import perf_counter

from repro.core.solver import PARSolver
from repro.errors import ConfigurationError, ReproError
from repro.obs.metrics import REGISTRY as _REGISTRY
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    ProtocolError,
    Request,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    parse_request,
)
from repro.serve.state import RackHost, ServeState

_REQUEST_SECONDS = _REGISTRY.histogram(
    "repro_serve_request_seconds",
    "Request latency by protocol verb (parse + dispatch)",
    labelnames=("op",),
)
_REQUESTS_TOTAL = _REGISTRY.counter(
    "repro_serve_requests_total",
    "Requests by protocol verb and outcome",
    labelnames=("op", "status"),
)
_COALESCED_TOTAL = _REGISTRY.counter(
    "repro_serve_coalesced_total",
    "Queries answered by awaiting an in-flight duplicate",
    labelnames=("op",),
)
_CHECKPOINT_SECONDS = _REGISTRY.histogram(
    "repro_serve_checkpoint_seconds", "Fleet checkpoint wall time"
)
# Registered by repro.core.solver (imported above); re-declared here to
# hold a direct reference for the cache-stats obs view.
_SOLVER_CACHE_LOOKUPS = _REGISTRY.counter(
    "repro_solver_cache_lookups_total", "Solve-cache lookups", labelnames=("result",)
)


class AllocationDaemon:
    """Serves a :class:`ServeState` fleet over TCP.

    Parameters
    ----------
    state:
        The hosted fleet (build with :meth:`ServeState.build`).
    host / port:
        Listening address; port ``0`` lets the OS pick (the bound port
        is published as :attr:`port` once started).
    audit_log:
        Optional JSONL event-stream path (appended, one event per line).
    metrics_interval_s:
        When set, a ``{"event": "metrics", "snapshot": ...}`` line is
        appended to the audit stream every interval (plus once at
        shutdown) — the always-on dump for deployments nobody scrapes.
        Requires ``audit_log``.
    """

    def __init__(
        self,
        state: ServeState,
        host: str = "127.0.0.1",
        port: int = 0,
        audit_log: str | Path | None = None,
        metrics_interval_s: float | None = None,
    ) -> None:
        if metrics_interval_s is not None:
            if metrics_interval_s <= 0:
                raise ConfigurationError("metrics interval must be positive")
            if audit_log is None:
                raise ConfigurationError(
                    "metrics_interval_s dumps to the audit stream; "
                    "pass audit_log too"
                )
        self.state = state
        self.host = host
        self.port = port
        self.metrics_interval_s = metrics_interval_s
        self._metrics_task: asyncio.Task | None = None
        self.audit_path = None if audit_log is None else Path(audit_log)
        self.counters: dict[str, int] = {
            "requests": 0,
            "errors": 0,
            "coalesced": 0,
            "epochs": 0,
            "checkpoints": 0,
        }
        self.op_counts: dict[str, int] = {}
        self._server: asyncio.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None
        self._locks: dict[str, asyncio.Lock] = {}
        self._inflight: dict[tuple[str, int], asyncio.Future] = {}
        self._audit_file: TextIO | None = None
        self._started = threading.Event()

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — meaningful once started."""
        return (self.host, self.port)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and open the audit stream."""
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._locks = {name: asyncio.Lock() for name in self.state.rack_names()}
        if self.audit_path is not None:
            self.audit_path.parent.mkdir(parents=True, exist_ok=True)
            self._audit_file = open(self.audit_path, "a")
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=MAX_LINE_BYTES
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._audit({"event": "serve-start", "racks": self.state.rack_names()})
        if self.metrics_interval_s is not None:
            self._metrics_task = self._loop.create_task(self._metrics_loop())
        self._started.set()

    def request_shutdown(self) -> None:
        """Ask the daemon to stop (thread-safe from signal handlers)."""
        if self._shutdown is not None:
            self._shutdown.set()

    async def run(self, install_signal_handlers: bool = True) -> None:
        """Serve until a shutdown is requested, then checkpoint and exit."""
        await self.start()
        await self.run_until_stopped(install_signal_handlers)

    async def run_until_stopped(self, install_signal_handlers: bool = True) -> None:
        """Block until shutdown; assumes :meth:`start` already ran."""
        assert self._loop is not None and self._shutdown is not None
        if install_signal_handlers:
            for sig in (signal.SIGTERM, signal.SIGINT):
                self._loop.add_signal_handler(sig, self.request_shutdown)
        try:
            await self._shutdown.wait()
        finally:
            if install_signal_handlers:
                for sig in (signal.SIGTERM, signal.SIGINT):
                    self._loop.remove_signal_handler(sig)
            await self._graceful_stop()

    async def _graceful_stop(self) -> None:
        """Stop accepting, quiesce the racks, checkpoint, close the audit."""
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()
        if self._metrics_task is not None:
            self._metrics_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._metrics_task
            self._metrics_task = None
        # Taking every rack lock guarantees no epoch or solve is mid-air
        # when the final checkpoint is cut.
        for lock in self._locks.values():
            await lock.acquire()
        try:
            if self.state.checkpoint_dir is not None:
                with _CHECKPOINT_SECONDS.time():
                    path = await asyncio.get_running_loop().run_in_executor(
                        None, self.state.checkpoint
                    )
                self.counters["checkpoints"] += 1
                self._audit({"event": "checkpoint", "path": str(path), "final": True})
        finally:
            for lock in self._locks.values():
                lock.release()
        if self.metrics_interval_s is not None:
            self._audit({"event": "metrics", "snapshot": _REGISTRY.snapshot()})
        self._audit({"event": "serve-stop", "counters": dict(self.counters)})
        if self._audit_file is not None:
            self._audit_file.close()
            self._audit_file = None

    # ------------------------------------------------------------------
    # Threaded embedding (tests, notebooks)
    # ------------------------------------------------------------------
    def run_in_thread(self) -> threading.Thread:
        """Run the daemon in a daemon thread; returns once it is listening.

        Signal handlers are not installed (they only work on the main
        thread); stop the daemon with :meth:`stop_from_thread`.
        """
        thread = threading.Thread(
            target=lambda: asyncio.run(self.run(install_signal_handlers=False)),
            daemon=True,
        )
        thread.start()
        if not self._started.wait(timeout=30.0):
            raise ConfigurationError("daemon failed to start within 30 s")
        return thread

    def stop_from_thread(self) -> None:
        """Request shutdown from outside the daemon's event loop."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self.request_shutdown)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    writer.write(
                        encode_message(
                            error_response(None, "message too long", "ProtocolError")
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if line.strip() == b"":
                    continue
                response = await self._respond(line)
                writer.write(encode_message(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _respond(self, line: bytes) -> dict[str, Any]:
        request_id: Any = None
        self.counters["requests"] += 1
        op = "invalid"  # until the line parses into a known verb
        start = perf_counter()
        try:
            message = decode_message(line)
            request_id = message.get("id")
            request = parse_request(message)
            op = request.op
            self.op_counts[op] = self.op_counts.get(op, 0) + 1
            result = await self._dispatch(request)
            _REQUESTS_TOTAL.labels(op, "ok").inc()
            return ok_response(request_id, result)
        except ReproError as exc:
            self.counters["errors"] += 1
            _REQUESTS_TOTAL.labels(op, "error").inc()
            return error_response(request_id, str(exc), type(exc).__name__)
        except Exception as exc:  # noqa: BLE001 - daemon must not die on a bad request
            self.counters["errors"] += 1
            _REQUESTS_TOTAL.labels(op, "error").inc()
            return error_response(request_id, str(exc), type(exc).__name__)
        finally:
            _REQUEST_SECONDS.labels(op).observe(perf_counter() - start)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self, request: Request) -> dict[str, Any]:
        op = request.op
        if op == "ping":
            return {"pong": True}
        if op == "racks":
            return {"racks": self.state.rack_names()}
        if op == "status":
            return self._status()
        if op == "cache-stats":
            return self._cache_stats()
        if op == "metrics":
            return {
                "text": _REGISTRY.expose(),
                "families": list(_REGISTRY.families()),
            }
        if op == "allocate":
            return await self._allocate(request)
        if op == "forecast":
            return self._rack(request).forecast()
        if op == "observe":
            return self._observe(request)
        if op == "step":
            return await self._step(request)
        if op == "submit":
            return await self._submit(request)
        if op == "plan":
            return await self._plan(request)
        if op == "queue-status":
            return await self._queue_status(request)
        if op == "checkpoint":
            return await self._checkpoint()
        if op == "shutdown":
            # Respond first; the event fires after this handler returns.
            assert self._loop is not None
            self._loop.call_soon(self.request_shutdown)
            return {"stopping": True}
        raise ProtocolError(f"unhandled op {op!r}")  # pragma: no cover

    def _rack(self, request: Request) -> RackHost:
        if request.rack is None:
            raise ConfigurationError(
                f"op {request.op!r} needs a 'rack'; serving "
                f"{self.state.rack_names()}"
            )
        return self.state.rack(request.rack)

    # ------------------------------------------------------------------
    # Ops
    # ------------------------------------------------------------------
    async def _allocate(self, request: Request) -> dict[str, Any]:
        host = self._rack(request)
        budget = request.params.get("budget_w")
        if budget is not None:
            budget = float(budget)
            if budget < 0:
                raise ConfigurationError("budget_w must be non-negative")
        else:
            # Resolve the planned budget up front so identical implicit
            # queries coalesce with explicit ones.
            budget = host.plan_budget_w()

        key = (host.name, round(budget / PARSolver.CACHE_BUDGET_QUANTUM_W))
        inflight = self._inflight.get(key)
        if inflight is not None:
            self.counters["coalesced"] += 1
            _COALESCED_TOTAL.labels("allocate").inc()
            return await asyncio.shield(inflight)

        assert self._loop is not None
        future: asyncio.Future = self._loop.create_future()
        self._inflight[key] = future
        try:
            async with self._locks[host.name]:
                result = await self._loop.run_in_executor(
                    None, host.allocate, budget
                )
            future.set_result(result)
            return result
        except BaseException as exc:
            future.set_exception(exc)
            # Mark retrieved: waiters re-raise their shielded copy, and a
            # future nobody awaited must not warn at GC time.
            future.exception()
            raise
        finally:
            del self._inflight[key]

    def _observe(self, request: Request) -> dict[str, Any]:
        host = self._rack(request)
        params = request.params
        try:
            renewable_w = float(params["renewable_w"])
            demand_w = float(params["demand_w"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(
                "observe needs numeric 'renewable_w' and 'demand_w'"
            ) from exc
        return host.observe(renewable_w, demand_w)

    async def _step(self, request: Request) -> dict[str, Any]:
        assert self._loop is not None
        load = request.params.get("load_fraction")
        load = None if load is None else float(load)
        if request.rack is None and self.state.coordinator is not None:
            return await self._step_cluster(load)
        host = self._rack(request)
        async with self._locks[host.name]:
            record = await self._loop.run_in_executor(None, host.step, load)
        self.counters["epochs"] += 1
        event = self.state.epoch_event(host, record)
        self._audit(event)
        return event

    async def _step_cluster(self, load: float | None) -> dict[str, Any]:
        assert self._loop is not None
        loads = None
        if load is not None:
            loads = [load] * len(self.state.racks)
        async with contextlib.AsyncExitStack() as stack:
            for name in sorted(self._locks):
                await stack.enter_async_context(self._locks[name])
            records = await self._loop.run_in_executor(
                None, self.state.step_cluster, loads
            )
        events = []
        for host, record in zip(self.state.racks.values(), records, strict=True):
            self.counters["epochs"] += 1
            event = self.state.epoch_event(host, record)
            self._audit(event)
            events.append(event)
        return {"cluster_epoch": self.state.cluster_epochs, "racks": events}

    async def _submit(self, request: Request) -> dict[str, Any]:
        assert self._loop is not None
        host = self._rack(request)
        job = request.params.get("job")
        if not isinstance(job, dict):
            raise ProtocolError("submit needs a 'job' object")
        async with self._locks[host.name]:
            return await self._loop.run_in_executor(None, host.submit, job)

    async def _plan(self, request: Request) -> dict[str, Any]:
        """Replan a rack's shift queue; concurrent duplicates coalesce.

        Planning is pure with respect to the rack clock and queue, so
        concurrent ``plan`` queries against the same rack share one
        in-flight computation, exactly like duplicate ``allocate``
        queries.  The sentinel quantum ``-1`` cannot collide with an
        allocate key: budgets are non-negative, so their quanta are too.
        """
        host = self._rack(request)
        key = (host.name, -1)
        inflight = self._inflight.get(key)
        if inflight is not None:
            self.counters["coalesced"] += 1
            _COALESCED_TOTAL.labels("plan").inc()
            return await asyncio.shield(inflight)

        assert self._loop is not None
        future: asyncio.Future = self._loop.create_future()
        self._inflight[key] = future
        try:
            async with self._locks[host.name]:
                result = await self._loop.run_in_executor(None, host.plan)
            future.set_result(result)
            return result
        except BaseException as exc:
            future.set_exception(exc)
            # Mark retrieved: waiters re-raise their shielded copy, and a
            # future nobody awaited must not warn at GC time.
            future.exception()
            raise
        finally:
            del self._inflight[key]

    async def _queue_status(self, request: Request) -> dict[str, Any]:
        assert self._loop is not None
        host = self._rack(request)
        async with self._locks[host.name]:
            return await self._loop.run_in_executor(None, host.queue_status)

    async def _checkpoint(self) -> dict[str, Any]:
        assert self._loop is not None
        async with contextlib.AsyncExitStack() as stack:
            for name in sorted(self._locks):
                await stack.enter_async_context(self._locks[name])
            with _CHECKPOINT_SECONDS.time():
                path = await self._loop.run_in_executor(None, self.state.checkpoint)
        self.counters["checkpoints"] += 1
        self._audit({"event": "checkpoint", "path": str(path), "final": False})
        return {"checkpoint_dir": str(path)}

    def _status(self) -> dict[str, Any]:
        return {
            **self.state.status(),
            "address": f"{self.host}:{self.port}",
            "counters": dict(self.counters),
            "ops": dict(self.op_counts),
        }

    def _cache_stats(self) -> dict[str, Any]:
        return {
            **self.state.cache_stats(),
            "coalesced": self.counters["coalesced"],
            "requests": self.counters["requests"],
            # Process-wide obs counters: one atomic view across every
            # rack's solver, so delta-based hit ratios can't be skewed
            # by racing the per-rack reads (see loadgen).
            "obs": {
                "solver_cache_hits": _SOLVER_CACHE_LOOKUPS.labels("hit").value,
                "solver_cache_misses": _SOLVER_CACHE_LOOKUPS.labels("miss").value,
            },
        }

    # ------------------------------------------------------------------
    # Audit stream
    # ------------------------------------------------------------------
    async def _metrics_loop(self) -> None:
        """Periodic metrics snapshots into the audit stream."""
        assert self.metrics_interval_s is not None
        while True:
            await asyncio.sleep(self.metrics_interval_s)
            self._audit({"event": "metrics", "snapshot": _REGISTRY.snapshot()})

    def _audit(self, event: dict[str, Any]) -> None:
        if self._audit_file is None:
            return
        self._audit_file.write(json.dumps(event) + "\n")
        self._audit_file.flush()
