"""Blocking client for the serving daemon.

A thin socket wrapper over the NDJSON protocol: one in-flight request
per client, correlation ids checked, server-reported failures surfaced
as :class:`ServeError`.  The load generator gives each worker thread its
own client; the CLI and tests use it directly.
"""

from __future__ import annotations

import socket
from typing import Any

from repro.errors import ReproError
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    decode_message,
    encode_message,
)


class ServeError(ReproError):
    """The daemon answered a request with an error response.

    Attributes
    ----------
    error_type:
        The server-side exception class name (``ConfigurationError``,
        ``SolverError``, ...), for callers that branch on failure kind.
    """

    def __init__(self, message: str, error_type: str = "error") -> None:
        self.error_type = error_type
        super().__init__(message)


class ServeClient:
    """One TCP connection to a serving daemon.

    Parameters
    ----------
    host / port:
        The daemon's listening address.
    timeout_s:
        Per-request socket timeout; a silent daemon raises rather than
        hanging a worker forever.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7313, timeout_s: float = 30.0) -> None:
        self.host = host
        self.port = port
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout_s)
        except OSError as exc:
            raise ServeError(
                f"cannot reach daemon at {host}:{port}: {exc}", "ConnectionError"
            ) from exc
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    # ------------------------------------------------------------------
    def request(self, op: str, rack: str | None = None, **params: Any) -> dict[str, Any]:
        """Send one request and return the ``result`` payload.

        Raises
        ------
        ServeError
            When the daemon reports a failure.
        ProtocolError / OSError
            On transport or framing problems.
        """
        self._next_id += 1
        request_id = self._next_id
        message: dict[str, Any] = {"id": request_id, "op": op, **params}
        if rack is not None:
            message["rack"] = rack
        self._file.write(encode_message(message))
        self._file.flush()
        line = self._file.readline(MAX_LINE_BYTES + 1)
        if not line:
            raise ServeError("connection closed by daemon", "ConnectionError")
        response = decode_message(line)
        if response.get("id") != request_id:
            raise ServeError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id!r}",
                "ProtocolError",
            )
        if not response.get("ok"):
            raise ServeError(
                str(response.get("error", "unknown server error")),
                str(response.get("error_type", "error")),
            )
        result = response.get("result")
        return result if isinstance(result, dict) else {}

    # ------------------------------------------------------------------
    # Convenience wrappers (one per daemon op)
    # ------------------------------------------------------------------
    def ping(self) -> dict[str, Any]:
        return self.request("ping")

    def racks(self) -> list[str]:
        return list(self.request("racks")["racks"])

    def allocate(self, rack: str, budget_w: float | None = None) -> dict[str, Any]:
        params = {} if budget_w is None else {"budget_w": budget_w}
        return self.request("allocate", rack=rack, **params)

    def forecast(self, rack: str) -> dict[str, Any]:
        return self.request("forecast", rack=rack)

    def observe(self, rack: str, renewable_w: float, demand_w: float) -> dict[str, Any]:
        return self.request(
            "observe", rack=rack, renewable_w=renewable_w, demand_w=demand_w
        )

    def step(
        self, rack: str | None = None, load_fraction: float | None = None
    ) -> dict[str, Any]:
        params = {} if load_fraction is None else {"load_fraction": load_fraction}
        return self.request("step", rack=rack, **params)

    def submit(self, rack: str, job: dict[str, Any]) -> dict[str, Any]:
        return self.request("submit", rack=rack, job=job)

    def plan(self, rack: str) -> dict[str, Any]:
        return self.request("plan", rack=rack)

    def queue_status(self, rack: str) -> dict[str, Any]:
        return self.request("queue-status", rack=rack)

    def status(self) -> dict[str, Any]:
        return self.request("status")

    def cache_stats(self) -> dict[str, Any]:
        return self.request("cache-stats")

    def metrics(self) -> dict[str, Any]:
        """Prometheus text exposition: ``{"text": ..., "families": [...]}``."""
        return self.request("metrics")

    def checkpoint(self) -> dict[str, Any]:
        return self.request("checkpoint")

    def shutdown(self) -> dict[str, Any]:
        return self.request("shutdown")

    # ------------------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
