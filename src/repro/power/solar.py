"""Photovoltaic array: irradiance trace -> electrical power.

The paper "simulates a data center with renewable energy provision" by
replaying NREL irradiance traces against its prototype (Section V-A.2).
:class:`SolarFarm` performs the same conversion here: a panel area and a
system efficiency turn W/m^2 into watts at the PDU.  The
:meth:`SolarFarm.sized_for` constructor picks the panel area so the
array's clear-sky peak matches a target rack power, which is how we scale
the High/Low traces to each experiment's rack.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, TraceError
from repro.traces.nrel import GHI_PEAK, IrradianceTrace

#: Combined panel + inverter + wiring efficiency of a small PV system.
DEFAULT_SYSTEM_EFFICIENCY = 0.18


class SolarFarm:
    """An on-site PV array replaying an irradiance trace.

    Parameters
    ----------
    trace:
        Irradiance time series (W/m^2).
    panel_area_m2:
        Total collector area.
    efficiency:
        Irradiance-to-AC conversion efficiency in (0, 1].
    """

    def __init__(
        self,
        trace: IrradianceTrace,
        panel_area_m2: float,
        efficiency: float = DEFAULT_SYSTEM_EFFICIENCY,
    ) -> None:
        if panel_area_m2 <= 0:
            raise ConfigurationError("panel area must be positive")
        if not 0.0 < efficiency <= 1.0:
            raise ConfigurationError("efficiency must be in (0, 1]")
        self.trace = trace
        self.panel_area_m2 = panel_area_m2
        self.efficiency = efficiency

    @classmethod
    def sized_for(
        cls,
        trace: IrradianceTrace,
        peak_power_w: float,
        efficiency: float = DEFAULT_SYSTEM_EFFICIENCY,
    ) -> "SolarFarm":
        """Array whose clear-sky-peak output is ``peak_power_w`` watts.

        Sizing uses the nominal clear-sky peak irradiance rather than the
        trace's own maximum so that High and Low traces sized for the
        same rack differ only in weather, not in installed capacity.
        """
        if peak_power_w <= 0:
            raise ConfigurationError("peak power must be positive")
        area = peak_power_w / (GHI_PEAK * efficiency)
        return cls(trace, panel_area_m2=area, efficiency=efficiency)

    @property
    def rated_peak_w(self) -> float:
        """Clear-sky-peak AC output (W)."""
        return GHI_PEAK * self.panel_area_m2 * self.efficiency

    def power_at(self, time_s: float) -> float:
        """AC power available from the array at ``time_s`` (W)."""
        power = self.trace.at(time_s) * self.panel_area_m2 * self.efficiency
        if power < 0:  # defensive: traces validate, but belt and braces
            raise TraceError(f"negative solar power at t={time_s}")
        return power

    def mean_power_w(self) -> float:
        """Trace-average AC output (W)."""
        return self.trace.mean_w_m2() * self.panel_area_m2 * self.efficiency
