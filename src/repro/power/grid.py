"""Utility grid power behind the automatic transfer switch.

The grid is the paper's "last resort only when the battery drains out"
(Section IV-B.1).  Its rack budget is deliberately under-provisioned —
1000 W in the Fig. 8 runs, "lower than the server power demand" — both
because peak grid power is expensive (the paper cites up to $13.61/kW
peak charges from [21]) and because GreenHetero explicitly targets
under-provisioned grid infrastructure (Fig. 12).

:class:`GridSource` enforces the budget, meters energy and peak draw, and
prices the usage with a simple peak-demand tariff for the cost analyses.
"""

from __future__ import annotations

from repro.errors import PowerError

#: Peak-demand charge the paper quotes from Parasol/GreenSwitch [21].
DEFAULT_PEAK_PRICE_PER_KW = 13.61

#: Volumetric energy price (US average commercial rate, $/kWh).
DEFAULT_ENERGY_PRICE_PER_KWH = 0.11


class GridSource:
    """Budget-capped grid feed with energy and peak-demand metering.

    Parameters
    ----------
    budget_w:
        Maximum combined power the rack may draw from the grid at any
        instant (load + battery charging).
    peak_price_per_kw:
        Monthly peak-demand charge, $/kW.
    energy_price_per_kwh:
        Volumetric charge, $/kWh.
    """

    def __init__(
        self,
        budget_w: float = 1000.0,
        peak_price_per_kw: float = DEFAULT_PEAK_PRICE_PER_KW,
        energy_price_per_kwh: float = DEFAULT_ENERGY_PRICE_PER_KWH,
    ) -> None:
        if budget_w < 0:
            raise PowerError("grid budget must be non-negative")
        if peak_price_per_kw < 0 or energy_price_per_kwh < 0:
            raise PowerError("prices must be non-negative")
        self.budget_w = budget_w
        self.peak_price_per_kw = peak_price_per_kw
        self.energy_price_per_kwh = energy_price_per_kwh
        self._energy_wh = 0.0
        self._peak_draw_w = 0.0

    def draw(self, power_w: float, duration_s: float) -> float:
        """Draw up to ``power_w`` for ``duration_s``; returns actual power.

        The return value is capped at the budget; the caller decides how
        to split it between load and battery charging.
        """
        if power_w < 0:
            raise PowerError(f"grid draw must be non-negative, got {power_w}")
        if duration_s <= 0:
            raise PowerError("duration must be positive")
        delivered = min(power_w, self.budget_w)
        self._energy_wh += delivered * duration_s / 3600.0
        self._peak_draw_w = max(self._peak_draw_w, delivered)
        return delivered

    @property
    def energy_wh(self) -> float:
        """Total grid energy consumed so far (Wh)."""
        return self._energy_wh

    @property
    def peak_draw_w(self) -> float:
        """Highest instantaneous grid draw observed (W)."""
        return self._peak_draw_w

    def cost_usd(self) -> float:
        """Peak-demand charge plus volumetric energy cost ($)."""
        return (
            self._peak_draw_w / 1000.0 * self.peak_price_per_kw
            + self._energy_wh / 1000.0 * self.energy_price_per_kwh
        )

    def __repr__(self) -> str:
        return (
            f"GridSource(budget={self.budget_w:.0f} W, used={self._energy_wh:.0f} Wh, "
            f"peak={self._peak_draw_w:.0f} W)"
        )
