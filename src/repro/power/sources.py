"""Shared power-source vocabulary.

:class:`SupplyBreakdown` is the per-interval accounting record every part
of the stack speaks: how many watts reached the rack from each source,
and how many were routed into the battery.  :class:`ChargeSource` names
who is charging the battery — the paper stipulates "there is only one
power source that can charge the battery at any given time"
(Section IV-B.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import PowerError


class ChargeSource(enum.Enum):
    """Which source, if any, is charging the battery this interval."""

    NONE = "none"
    RENEWABLE = "renewable"
    GRID = "grid"


@dataclass(frozen=True)
class SupplyBreakdown:
    """Average power flows over one interval (all watts, non-negative).

    Attributes
    ----------
    renewable_to_load_w:
        Solar power delivered directly to the rack.
    battery_to_load_w:
        Battery discharge delivered to the rack.
    grid_to_load_w:
        Grid power delivered to the rack.
    charge_w:
        Power routed *into* the battery (before charging losses).
    charge_source:
        Who provided ``charge_w``.
    """

    renewable_to_load_w: float = 0.0
    battery_to_load_w: float = 0.0
    grid_to_load_w: float = 0.0
    charge_w: float = 0.0
    charge_source: ChargeSource = ChargeSource.NONE

    def __post_init__(self) -> None:
        for field_name in (
            "renewable_to_load_w",
            "battery_to_load_w",
            "grid_to_load_w",
            "charge_w",
        ):
            value = getattr(self, field_name)
            if value < -1e-9:
                raise PowerError(f"{field_name} must be non-negative, got {value}")
        if self.charge_w > 1e-9 and self.charge_source is ChargeSource.NONE:
            raise PowerError("charge_w > 0 requires a charge source")

    @property
    def total_to_load_w(self) -> float:
        """Total power delivered to the rack (W)."""
        return self.renewable_to_load_w + self.battery_to_load_w + self.grid_to_load_w

    @property
    def green_to_load_w(self) -> float:
        """Green (renewable + battery) share of the rack supply (W)."""
        return self.renewable_to_load_w + self.battery_to_load_w

    @property
    def grid_total_w(self) -> float:
        """All grid draw: load plus any grid-sourced charging (W)."""
        charging = self.charge_w if self.charge_source is ChargeSource.GRID else 0.0
        return self.grid_to_load_w + charging
