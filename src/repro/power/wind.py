"""On-site wind generation (the paper's other renewable, Section II-A).

The paper's prototype replays solar traces, but its architecture (Fig. 2)
explicitly provisions "photovoltaic (PV) and wind" at the PDU.  This
module supplies the wind half so hybrid green racks can be simulated:

* **Wind speed** — a mean-reverting AR(1) process in log space with a
  mild diurnal modulation (winds pick up in the afternoon), giving the
  right Weibull-ish marginal distribution and realistic gust
  autocorrelation; deterministic per seed.
* **Turbine power curve** — the standard piecewise curve: zero below the
  cut-in speed, cubic between cut-in and rated, flat at rated power, and
  zero again above the cut-out speed (storm protection).

A :class:`WindFarm` exposes the same ``power_at(time_s)`` interface as
:class:`~repro.power.solar.SolarFarm`, so the PDU accepts either — or
both combined through :class:`HybridRenewable`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError, TraceError
from repro.units import SECONDS_PER_DAY, SECONDS_PER_HOUR

#: Standard small-turbine power-curve speeds (m/s).
CUT_IN_MS = 3.0
RATED_MS = 11.0
CUT_OUT_MS = 25.0


def turbine_power_fraction(wind_speed_ms: float) -> float:
    """Fraction of rated power produced at ``wind_speed_ms``.

    Zero below cut-in and above cut-out; cubic ramp from cut-in to
    rated; flat at 1.0 between rated and cut-out.
    """
    if wind_speed_ms < 0:
        raise TraceError(f"wind speed must be non-negative, got {wind_speed_ms}")
    if wind_speed_ms < CUT_IN_MS or wind_speed_ms >= CUT_OUT_MS:
        return 0.0
    if wind_speed_ms >= RATED_MS:
        return 1.0
    x = (wind_speed_ms - CUT_IN_MS) / (RATED_MS - CUT_IN_MS)
    return x**3


class WindSpeedTrace:
    """Synthetic wind-speed series (15-minute sampling, seeded).

    Parameters
    ----------
    days:
        Trace length.
    mean_speed_ms:
        Long-run mean wind speed.
    gustiness:
        Innovation scale of the log-AR(1) process; higher = choppier.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        days: float = 7.0,
        mean_speed_ms: float = 7.0,
        gustiness: float = 0.15,
        seed: int = 2021,
        interval_s: float = 900.0,
    ) -> None:
        if days <= 0:
            raise TraceError("days must be positive")
        if mean_speed_ms <= 0:
            raise TraceError("mean wind speed must be positive")
        if gustiness < 0:
            raise TraceError("gustiness must be non-negative")
        rng = np.random.default_rng(seed)
        n = int(days * SECONDS_PER_DAY // interval_s)
        self.interval_s = interval_s
        self.times_s = np.arange(n) * interval_s
        log_mean = math.log(mean_speed_ms)
        x = log_mean
        speeds = np.empty(n)
        for i in range(n):
            hour = (self.times_s[i] % SECONDS_PER_DAY) / SECONDS_PER_HOUR
            # Afternoon breeze: +-10% diurnal modulation peaking at 15:00.
            diurnal = 1.0 + 0.10 * math.cos((hour - 15.0) / 24.0 * 2.0 * math.pi)
            x += 0.12 * (log_mean - x) + gustiness * rng.standard_normal()
            speeds[i] = math.exp(x) * diurnal
        self.speeds_ms = speeds

    @property
    def duration_s(self) -> float:
        return float(len(self.speeds_ms) * self.interval_s)

    def at(self, time_s: float) -> float:
        """Wind speed at ``time_s`` (zero-order hold, wraps)."""
        wrapped = time_s % self.duration_s
        idx = min(int(wrapped // self.interval_s), len(self.speeds_ms) - 1)
        return float(self.speeds_ms[idx])


class WindFarm:
    """One or more turbines behind the rack PDU.

    Parameters
    ----------
    trace:
        Wind-speed series to replay.
    rated_power_w:
        Combined rated output of the turbines.
    """

    def __init__(self, trace: WindSpeedTrace, rated_power_w: float) -> None:
        if rated_power_w <= 0:
            raise ConfigurationError("rated power must be positive")
        self.trace = trace
        self.rated_power_w = rated_power_w

    def power_at(self, time_s: float) -> float:
        """AC power available from the turbines at ``time_s`` (W)."""
        return self.rated_power_w * turbine_power_fraction(self.trace.at(time_s))

    def mean_power_w(self, samples: int = 500) -> float:
        """Trace-average output, estimated over ``samples`` points (W)."""
        times = np.linspace(0.0, self.trace.duration_s, samples, endpoint=False)
        return float(np.mean([self.power_at(float(t)) for t in times]))


class HybridRenewable:
    """Sum of several renewable feeds sharing one PDU input.

    Accepts anything exposing ``power_at(time_s)`` — solar farms, wind
    farms, or nested hybrids.
    """

    def __init__(self, *sources) -> None:
        if not sources:
            raise ConfigurationError("a hybrid needs at least one source")
        for source in sources:
            if not hasattr(source, "power_at"):
                raise ConfigurationError(f"{source!r} lacks power_at()")
        self.sources = tuple(sources)

    def power_at(self, time_s: float) -> float:
        return sum(source.power_at(time_s) for source in self.sources)
