"""The rack power distribution unit (PDU) and transfer-switch logic.

In the paper's architecture (Fig. 2) each rack has its own PDU fed by the
on-site PV array, a distributed battery bank, and the utility grid behind
an automatic transfer switch.  The PDU here *mechanically executes* power
flows for one interval under the priority order the paper fixes:

1. renewable power serves the load first;
2. the battery supplements any shortfall (down to its DoD floor);
3. the grid is the last resort, capped at its budget;
4. surplus renewable charges the battery; when there is no surplus and
   the controller asks for it, leftover grid budget charges the battery —
   never both at once (single-charging-source rule, Section IV-B.1).

*Deciding* how much load to place (the rack power budget, Cases A/B/C)
is the scheduler's job (:mod:`repro.core.sources`); the PDU only enforces
physics and reports what actually flowed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PowerError
from repro.power.battery import BatteryBank
from repro.power.grid import GridSource
from repro.power.sources import ChargeSource, SupplyBreakdown


@dataclass(frozen=True)
class EpochFlows:
    """What actually flowed through the PDU during one interval.

    Attributes
    ----------
    breakdown:
        Per-source watts to the load plus battery-charging flows.
    renewable_available_w:
        Solar power that was available during the interval.
    curtailed_w:
        Renewable power neither delivered to the load nor stored
        (battery full or charge-rate limited).
    delivered_w:
        Convenience copy of ``breakdown.total_to_load_w``.
    battery_soc_wh:
        Battery state of charge after the interval.
    """

    breakdown: SupplyBreakdown
    renewable_available_w: float
    curtailed_w: float
    delivered_w: float
    battery_soc_wh: float


class PDU:
    """One rack's power tree: renewable + battery + grid behind the ATS.

    Parameters
    ----------
    renewable:
        The on-site renewable feed — a
        :class:`~repro.power.solar.SolarFarm`, a
        :class:`~repro.power.wind.WindFarm`, or a
        :class:`~repro.power.wind.HybridRenewable` — anything exposing
        ``power_at(time_s)``.
    battery:
        The rack's distributed battery bank.
    grid:
        Budget-capped utility feed.
    """

    def __init__(self, renewable, battery: BatteryBank, grid: GridSource) -> None:
        if not hasattr(renewable, "power_at"):
            raise PowerError(f"renewable source {renewable!r} lacks power_at()")
        self.renewable = renewable
        self.battery = battery
        self.grid = grid

    @property
    def solar(self):
        """Backwards-compatible alias for the renewable feed."""
        return self.renewable

    def available_w(self, time_s: float, duration_s: float) -> float:
        """Upper bound on rack power deliverable now (planning aid)."""
        return (
            self.renewable.power_at(time_s)
            + self.battery.max_discharge_power_w(duration_s)
            + self.grid.budget_w
        )

    def supply(
        self,
        load_w: float,
        time_s: float,
        duration_s: float,
        use_battery: bool = True,
        grid_charges_battery: bool = False,
        battery_cap_w: float | None = None,
    ) -> EpochFlows:
        """Serve ``load_w`` watts for ``duration_s`` seconds.

        Parameters
        ----------
        load_w:
            Rack power demand this interval.
        time_s:
            Interval start (drives the solar trace).
        duration_s:
            Interval length.
        use_battery:
            Whether the controller permits battery discharge.
        grid_charges_battery:
            Whether leftover grid budget should recharge a non-full
            battery when there is no renewable surplus.
        battery_cap_w:
            Optional limit on battery discharge this interval (the
            rationing extension); the grid covers the remainder.

        Returns
        -------
        EpochFlows
            Actual flows; ``delivered_w`` may be below ``load_w`` when
            every source is exhausted (the scheduler's budget should
            normally prevent that).
        """
        if load_w < 0:
            raise PowerError(f"load must be non-negative, got {load_w}")
        if duration_s <= 0:
            raise PowerError("duration must be positive")

        renewable = self.renewable.power_at(time_s)
        r_to_load = min(renewable, load_w)
        shortfall = load_w - r_to_load

        b_to_load = 0.0
        if use_battery and shortfall > 0:
            ask = shortfall if battery_cap_w is None else min(shortfall, battery_cap_w)
            if ask > 0:
                b_to_load = self.battery.discharge(ask, duration_s)
                shortfall -= b_to_load

        # Grid: one metered draw covering load and (optionally) charging,
        # with load taking priority within the budget.
        desired_grid_load = shortfall
        surplus = renewable - r_to_load

        charge_w = 0.0
        charge_source = ChargeSource.NONE
        desired_grid_charge = 0.0
        if surplus > 0:
            charge_w = self.battery.charge(surplus, duration_s)
            if charge_w > 0:
                charge_source = ChargeSource.RENEWABLE
        elif grid_charges_battery and not self.battery.is_full:
            head = max(0.0, self.grid.budget_w - min(desired_grid_load, self.grid.budget_w))
            desired_grid_charge = min(head, self.battery.max_charge_power_w(duration_s))

        g_total = 0.0
        if desired_grid_load > 0 or desired_grid_charge > 0:
            g_total = self.grid.draw(desired_grid_load + desired_grid_charge, duration_s)
        g_to_load = min(desired_grid_load, g_total)
        g_to_charge = g_total - g_to_load
        if g_to_charge > 0:
            accepted = self.battery.charge(g_to_charge, duration_s)
            charge_w = accepted
            charge_source = ChargeSource.GRID

        curtailed = max(0.0, surplus - charge_w) if charge_source is not ChargeSource.GRID else max(0.0, surplus)

        breakdown = SupplyBreakdown(
            renewable_to_load_w=r_to_load,
            battery_to_load_w=b_to_load,
            grid_to_load_w=g_to_load,
            charge_w=charge_w,
            charge_source=charge_source,
        )
        return EpochFlows(
            breakdown=breakdown,
            renewable_available_w=renewable,
            curtailed_w=curtailed,
            delivered_w=breakdown.total_to_load_w,
            battery_soc_wh=self.battery.soc_wh,
        )
