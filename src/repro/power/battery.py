"""Rack-level lead-acid battery bank.

The paper provisions "10 12V 100Ah lead-acid batteries for the server
racks" with a depth-of-discharge (DoD) cap of 40% — giving about 1300
recharge cycles of lifetime — and an 80% energy efficiency
(Section V-A.2).  :class:`BatteryBank` models exactly that:

* state of charge (SoC) tracked in watt-hours,
* a hard SoC floor at ``(1 - DoD) * capacity`` the controller may not
  discharge below,
* charging losses (the 80% round-trip efficiency applied on the way in),
* C-rate limits on charge and discharge power, and
* equivalent-full-cycle counting for lifetime analysis (Fig. 8b/11b
  discussions).
"""

from __future__ import annotations

from repro.errors import BatteryError

#: Lead-acid discharge C-rate: capacity / 5 hours.
DEFAULT_DISCHARGE_HOURS = 5.0

#: Lead-acid charge C-rate: capacity / 10 hours.
DEFAULT_CHARGE_HOURS = 10.0

#: Cycle life at 40% DoD for the paper's batteries [31].
RATED_CYCLES_AT_DOD = 1300.0


class BatteryBank:
    """A bank of identical lead-acid batteries with DoD and rate limits.

    ``is_unlimited`` is False for every real bank; the
    :class:`UnlimitedSupply` sentinel overrides it so telemetry and
    lifetime analysis can recognise a pseudo-battery and skip it.

    Parameters
    ----------
    count:
        Number of batteries (paper: 10).
    voltage_v / amp_hours:
        Per-battery rating (paper: 12 V, 100 Ah).
    depth_of_discharge:
        Usable fraction of capacity (paper: 0.4).
    efficiency:
        Round-trip energy efficiency, applied to charging (paper: 0.8).
    max_discharge_w / max_charge_w:
        Power limits; default to the C/5 and C/10 rates.
    initial_soc_fraction:
        Starting SoC as a fraction of full capacity (paper initialises
        the battery "to its maximal state").  Starting below the DoD
        floor is rejected: the controller may never discharge below the
        floor, so such a bank could not have reached that state.
    peukert_exponent:
        Rate dependence of lead-acid capacity: discharging faster than
        the reference C/20 rate debits the stored energy by
        ``(P / P_C20) ** (k - 1)``.  The default 1.0 is the ideal
        (rate-independent) battery the paper's energy arithmetic
        assumes; real lead-acid banks measure k ~ 1.1-1.3.
    """

    #: Real banks store finite energy; see :class:`UnlimitedSupply`.
    is_unlimited = False

    def __init__(
        self,
        count: int = 10,
        voltage_v: float = 12.0,
        amp_hours: float = 100.0,
        depth_of_discharge: float = 0.4,
        efficiency: float = 0.8,
        max_discharge_w: float | None = None,
        max_charge_w: float | None = None,
        initial_soc_fraction: float = 1.0,
        peukert_exponent: float = 1.0,
    ) -> None:
        if count < 1:
            raise BatteryError("battery count must be >= 1")
        if voltage_v <= 0 or amp_hours <= 0:
            raise BatteryError("voltage and amp-hours must be positive")
        if not 0.0 < depth_of_discharge <= 1.0:
            raise BatteryError("depth of discharge must be in (0, 1]")
        if not 0.0 < efficiency <= 1.0:
            raise BatteryError("efficiency must be in (0, 1]")

        self.capacity_wh = count * voltage_v * amp_hours
        self.depth_of_discharge = depth_of_discharge
        self.efficiency = efficiency
        self.max_discharge_w = (
            self.capacity_wh / DEFAULT_DISCHARGE_HOURS
            if max_discharge_w is None
            else max_discharge_w
        )
        self.max_charge_w = (
            self.capacity_wh / DEFAULT_CHARGE_HOURS if max_charge_w is None else max_charge_w
        )
        if self.max_discharge_w <= 0 or self.max_charge_w <= 0:
            raise BatteryError("power limits must be positive")
        if not 0.0 <= initial_soc_fraction <= 1.0:
            raise BatteryError("initial SoC fraction must be in [0, 1]")
        if peukert_exponent < 1.0:
            raise BatteryError("Peukert exponent must be >= 1.0")
        self.peukert_exponent = peukert_exponent

        floor = (1.0 - depth_of_discharge) * self.capacity_wh
        initial_wh = initial_soc_fraction * self.capacity_wh
        if initial_wh < floor - 1e-9 * self.capacity_wh:
            raise BatteryError(
                f"initial SoC {initial_soc_fraction:.0%} is below the DoD "
                f"floor ({1.0 - depth_of_discharge:.0%} of capacity); the "
                "controller may never discharge below the floor, so a bank "
                "cannot start there either"
            )
        self.soc_wh = max(initial_wh, floor)
        self._discharged_wh_total = 0.0
        self._charged_wh_total = 0.0

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    @property
    def floor_wh(self) -> float:
        """SoC below which discharging is forbidden (the DoD floor)."""
        return (1.0 - self.depth_of_discharge) * self.capacity_wh

    @property
    def usable_wh(self) -> float:
        """Energy available above the DoD floor right now."""
        return max(0.0, self.soc_wh - self.floor_wh)

    @property
    def headroom_wh(self) -> float:
        """Stored energy the bank can still accept."""
        return max(0.0, self.capacity_wh - self.soc_wh)

    @property
    def soc_fraction(self) -> float:
        """SoC as a fraction of full capacity."""
        return self.soc_wh / self.capacity_wh

    @property
    def at_dod_floor(self) -> bool:
        """True when the bank is drained to its DoD limit."""
        return self.usable_wh <= 1e-9

    @property
    def is_full(self) -> bool:
        return self.headroom_wh <= 1e-9

    @property
    def equivalent_cycles(self) -> float:
        """Total discharge expressed in full DoD-depth cycles."""
        per_cycle = self.depth_of_discharge * self.capacity_wh
        return self._discharged_wh_total / per_cycle

    @property
    def lifetime_consumed_fraction(self) -> float:
        """Fraction of the rated 1300-cycle lifetime consumed so far."""
        return self.equivalent_cycles / RATED_CYCLES_AT_DOD

    # ------------------------------------------------------------------
    # Flow limits (planning queries used by the scheduler)
    # ------------------------------------------------------------------
    def _peukert_factor(self, power_w: float) -> float:
        """SoC debit multiplier for discharging at ``power_w``.

        Relative to the C/20 reference rate; 1.0 at or below it, and for
        the ideal battery (exponent 1.0) everywhere.
        """
        if self.peukert_exponent == 1.0 or power_w <= 0.0:
            return 1.0
        reference_w = self.capacity_wh / 20.0
        ratio = power_w / reference_w
        if ratio <= 1.0:
            return 1.0
        return ratio ** (self.peukert_exponent - 1.0)

    def max_discharge_power_w(self, duration_s: float) -> float:
        """Largest constant power deliverable for ``duration_s`` seconds."""
        if duration_s <= 0:
            raise BatteryError("duration must be positive")
        energy_limited = self.usable_wh * 3600.0 / duration_s
        # Under Peukert the debit exceeds the delivered energy, shrinking
        # the deliverable power proportionally (first-order correction).
        rate_limited = self.max_discharge_w
        candidate = min(rate_limited, energy_limited)
        factor = self._peukert_factor(candidate)
        return min(rate_limited, energy_limited / factor)

    def max_charge_power_w(self, duration_s: float) -> float:
        """Largest constant charging power acceptable for ``duration_s``."""
        if duration_s <= 0:
            raise BatteryError("duration must be positive")
        # Headroom is filled at `efficiency`, so input power can exceed
        # headroom/duration by 1/efficiency.
        energy_limited = self.headroom_wh / self.efficiency * 3600.0 / duration_s
        return min(self.max_charge_w, energy_limited)

    # ------------------------------------------------------------------
    # Flows
    # ------------------------------------------------------------------
    def discharge(self, power_w: float, duration_s: float) -> float:
        """Discharge at up to ``power_w`` for ``duration_s``.

        Returns the power actually delivered (W), limited by the C-rate
        and the DoD floor.  Never raises for over-asking — the caller
        (the PDU) uses the returned value for accounting.
        """
        if power_w < 0:
            raise BatteryError(f"discharge power must be non-negative, got {power_w}")
        delivered = min(power_w, self.max_discharge_power_w(duration_s))
        energy = delivered * duration_s / 3600.0
        debit = energy * self._peukert_factor(delivered)
        # Never let the Peukert debit cross the DoD floor.
        debit = min(debit, self.usable_wh)
        self.soc_wh -= debit
        self._discharged_wh_total += debit
        return delivered

    def charge(self, power_w: float, duration_s: float) -> float:
        """Charge at up to ``power_w`` for ``duration_s``.

        Returns the input power actually accepted (W); the stored energy
        is ``accepted * duration * efficiency``.
        """
        if power_w < 0:
            raise BatteryError(f"charge power must be non-negative, got {power_w}")
        accepted = min(power_w, self.max_charge_power_w(duration_s))
        energy_in = accepted * duration_s / 3600.0
        self.soc_wh = min(self.capacity_wh, self.soc_wh + energy_in * self.efficiency)
        self._charged_wh_total += energy_in
        return accepted

    def __repr__(self) -> str:
        return (
            f"BatteryBank(soc={self.soc_fraction:.1%} of {self.capacity_wh:.0f} Wh, "
            f"floor={self.floor_wh:.0f} Wh, cycles={self.equivalent_cycles:.2f})"
        )


class UnlimitedSupply(BatteryBank):
    """An inexhaustible pseudo-battery for the constrained-supply sweeps.

    The Fig. 9/10/13/14 methodology needs scarcity to come *only* from
    the per-epoch budget override: the grid is disabled and the battery
    must never run dry.  Oversizing a real :class:`BatteryBank` (the old
    ``count=1000`` trick) merely postpones the DoD floor — a long enough
    horizon still hits it — and its discharge total pollutes the
    equivalent-cycle and lifetime telemetry with nonsense wear numbers.

    This sentinel delivers any requested power up to ``power_limit_w``
    without ever changing state: SoC stays pinned at full, the cycle
    counters stay at zero, and ``is_unlimited`` is True so consumers
    (the invariant auditor, :func:`repro.analysis.lifetime.project_lifetime`)
    can recognise and exclude it.  It reports itself full, so the PDU
    curtails renewable surplus instead of "charging" it away.
    """

    is_unlimited = True

    def __init__(self, power_limit_w: float = 1e9) -> None:
        if power_limit_w <= 0:
            raise BatteryError("power limit must be positive")
        # Paper-default geometry keeps every planning query (usable_wh,
        # resume thresholds) finite; the flow methods below pin the state.
        super().__init__()
        self.max_discharge_w = power_limit_w
        self.max_charge_w = power_limit_w

    def max_discharge_power_w(self, duration_s: float) -> float:
        if duration_s <= 0:
            raise BatteryError("duration must be positive")
        return self.max_discharge_w

    def max_charge_power_w(self, duration_s: float) -> float:
        if duration_s <= 0:
            raise BatteryError("duration must be positive")
        return 0.0

    def discharge(self, power_w: float, duration_s: float) -> float:
        if power_w < 0:
            raise BatteryError(f"discharge power must be non-negative, got {power_w}")
        if duration_s <= 0:
            raise BatteryError("duration must be positive")
        return min(power_w, self.max_discharge_w)

    def charge(self, power_w: float, duration_s: float) -> float:
        if power_w < 0:
            raise BatteryError(f"charge power must be non-negative, got {power_w}")
        if duration_s <= 0:
            raise BatteryError("duration must be positive")
        return 0.0  # always "full": surplus is curtailed, not stored

    def __repr__(self) -> str:
        return f"UnlimitedSupply(limit={self.max_discharge_w:.0f} W)"
