"""Energy substrate: solar farm, battery bank, grid, and the PDU tree.

Models the rack-level green power system of the paper's Fig. 2: an
on-site photovoltaic array feeding a rack PDU, a distributed lead-acid
battery bank per rack (DoD-limited, 80% efficient), and utility grid
power behind an automatic transfer switch with a capped budget.
"""

from repro.power.battery import BatteryBank
from repro.power.grid import GridSource
from repro.power.pdu import PDU, EpochFlows
from repro.power.solar import SolarFarm
from repro.power.sources import ChargeSource, SupplyBreakdown
from repro.power.wind import HybridRenewable, WindFarm, WindSpeedTrace

__all__ = [
    "BatteryBank",
    "ChargeSource",
    "EpochFlows",
    "GridSource",
    "HybridRenewable",
    "PDU",
    "SolarFarm",
    "SupplyBreakdown",
    "WindFarm",
    "WindSpeedTrace",
]
