"""The workload catalog (paper Table I).

Sixteen datacenter workloads spanning four suites:

* **SPEC / Cloudsuite** — interactive, latency-SLO constrained services
  (SPECjbb, Web-search, Memcached).
* **PARSEC** — emerging batch workloads (computer vision, encoding,
  financial analytics, ...).
* **SPECCPU** — the HPC representative (Mcf).
* **Rodinia** — GPU-CPU heterogeneous computing kernels, runnable on both
  device classes.

Each entry records the suite, the paper's performance metric, the latency
SLO (for interactive workloads), and whether a GPU port exists.  The
*response* parameters (frequency sensitivity, power intensity, platform
affinity) live in :mod:`repro.workloads.models`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import UnknownWorkloadError
from repro.workloads.slo import LatencySLO


class WorkloadKind(enum.Enum):
    """Coarse behavioural class of a workload."""

    INTERACTIVE = "interactive"  # latency-SLO constrained service
    BATCH = "batch"              # throughput-oriented, always saturating
    HPC = "hpc"                  # long-running compute job


@dataclass(frozen=True)
class Workload:
    """One Table I row.

    Attributes
    ----------
    name:
        Catalog key, e.g. ``"Streamcluster"``.
    suite:
        Originating benchmark suite.
    kind:
        Interactive / batch / HPC.
    metric:
        The performance metric the paper reports for this workload
        (jops, ops, rps, ips, ...).
    slo:
        Tail-latency constraint for interactive workloads, else ``None``.
    gpu_capable:
        True when the workload has a GPU port (the Rodinia set plus the
        Rodinia build of Streamcluster used in Comb6).
    """

    name: str
    suite: str
    kind: WorkloadKind
    metric: str
    slo: LatencySLO | None = None
    gpu_capable: bool = False

    @property
    def is_interactive(self) -> bool:
        return self.kind is WorkloadKind.INTERACTIVE

    @property
    def is_deferrable(self) -> bool:
        """Batch/HPC work can be time-shifted; interactive cannot."""
        return not self.is_interactive


def _interactive(name: str, suite: str, metric: str, pct: float, bound_s: float) -> Workload:
    return Workload(
        name=name,
        suite=suite,
        kind=WorkloadKind.INTERACTIVE,
        metric=metric,
        slo=LatencySLO(percentile=pct, bound_s=bound_s),
    )


def _parsec(name: str) -> Workload:
    return Workload(name=name, suite="PARSEC", kind=WorkloadKind.BATCH, metric="ips")


def _rodinia(name: str) -> Workload:
    return Workload(
        name=name, suite="Rodinia", kind=WorkloadKind.HPC, metric="ips", gpu_capable=True
    )


#: The full Table I catalog, keyed by workload name.
WORKLOADS: dict[str, Workload] = {
    w.name: w
    for w in (
        # Interactive services: metric is throughput under a tail-latency SLO.
        _interactive("SPECjbb", "SPEC", "jops", 0.99, 0.500),
        _interactive("Web-search", "Cloudsuite", "ops", 0.90, 0.500),
        _interactive("Memcached", "Cloudsuite", "rps", 0.95, 0.010),
        # PARSEC batch workloads.
        Workload(
            "Streamcluster", "PARSEC", WorkloadKind.BATCH, "ips", gpu_capable=True
        ),
        _parsec("Freqmine"),
        _parsec("Blackscholes"),
        _parsec("Bodytrack"),
        _parsec("Swaptions"),
        _parsec("Vips"),
        _parsec("X264"),
        _parsec("Canneal"),
        # SPECCPU HPC representative.
        Workload("Mcf", "SPECCPU", WorkloadKind.HPC, "ips"),
        # Rodinia heterogeneous-computing kernels (CPU and GPU ports).
        _rodinia("Srad_v1"),
        _rodinia("Particlefilter"),
        _rodinia("Cfd"),
    )
}

#: The three latency-constrained services of Table I.
INTERACTIVE_WORKLOADS: tuple[str, ...] = ("SPECjbb", "Web-search", "Memcached")

#: Workloads with a GPU port (evaluated on Comb6 in Fig. 14).
GPU_WORKLOADS: tuple[str, ...] = tuple(
    w.name for w in WORKLOADS.values() if w.gpu_capable
)

#: The thirteen workloads of the Fig. 9 / Fig. 10 sweep: three interactive
#: services, eight PARSEC workloads, the SPECCPU HPC workload, plus the
#: CPU build of Cfd.
FIG9_WORKLOADS: tuple[str, ...] = (
    "SPECjbb",
    "Web-search",
    "Memcached",
    "Streamcluster",
    "Freqmine",
    "Blackscholes",
    "Bodytrack",
    "Swaptions",
    "Vips",
    "X264",
    "Canneal",
    "Mcf",
    "Cfd",
)


def workload_names() -> tuple[str, ...]:
    """All catalog keys, in Table I order."""
    return tuple(WORKLOADS)


def get_workload(name: str) -> Workload:
    """Look up a workload by name (case-insensitive).

    Raises
    ------
    UnknownWorkloadError
        If the name matches no catalog entry.
    """
    if name in WORKLOADS:
        return WORKLOADS[name]
    for key, workload in WORKLOADS.items():
        if key.lower() == name.lower():
            return workload
    raise UnknownWorkloadError(name, workload_names())
