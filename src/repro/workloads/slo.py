"""Latency-SLO constrained throughput (Table I's percentile metrics).

The interactive workloads in the paper report throughput *subject to a
tail-latency constraint*: SPECjbb reports jops under a 99th-percentile
500 ms bound, Web-search ops under a 90th-percentile 500 ms bound, and
Memcached rps under a 95th-percentile 10 ms bound.

We model each interactive server as an M/M/1 queue whose service rate is
the server's current compute capacity ``mu`` (ops/s at the operating
frequency).  For M/M/1 the response-time tail is exponential,

    P(W > t) = exp(-(mu - lambda) * t),

so the p-th percentile latency at offered load ``lambda`` is

    t_p = ln(1 / (1 - p)) / (mu - lambda),

and the largest sustainable throughput that still meets ``t_p <= bound``
is

    lambda* = mu - ln(1 / (1 - p)) / bound.

This is the classical "knee" model: the SLO carves a fixed headroom off
the raw capacity, and when capacity falls below that headroom the server
can serve nothing within the SLO at all.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LatencySLO:
    """A percentile tail-latency bound, e.g. "99%-ile 500 ms".

    Attributes
    ----------
    percentile:
        Tail percentile in (0, 1), e.g. ``0.99``.
    bound_s:
        Latency bound in seconds, e.g. ``0.5``.
    """

    percentile: float
    bound_s: float

    def __post_init__(self) -> None:
        if not 0.0 < self.percentile < 1.0:
            raise ConfigurationError(
                f"SLO percentile must be in (0, 1), got {self.percentile}"
            )
        if self.bound_s <= 0.0:
            raise ConfigurationError(f"SLO bound must be positive, got {self.bound_s}")

    @property
    def headroom_ops(self) -> float:
        """Capacity headroom the SLO reserves: ``ln(1/(1-p)) / bound`` ops/s."""
        return math.log(1.0 / (1.0 - self.percentile)) / self.bound_s

    def describe(self) -> str:
        """Human-readable form, e.g. ``"99%-ile 500ms"``."""
        return f"{self.percentile:.0%}-ile {self.bound_s * 1000:.0f}ms"


def slo_constrained_throughput(capacity_ops: float, slo: LatencySLO | None) -> float:
    """Largest throughput sustainable within the SLO at capacity ``capacity_ops``.

    Parameters
    ----------
    capacity_ops:
        Raw service capacity ``mu`` of the server at its current power
        state, in ops/s.
    slo:
        The latency constraint; ``None`` means unconstrained (batch), in
        which case the capacity itself is returned.

    Returns
    -------
    float
        ``max(0, mu - headroom)`` for interactive workloads.
    """
    if capacity_ops < 0.0:
        raise ConfigurationError("capacity must be non-negative")
    if slo is None:
        return capacity_ops
    return max(0.0, capacity_ops - slo.headroom_ops)


def percentile_latency(capacity_ops: float, offered_ops: float, slo: LatencySLO) -> float:
    """The p-th percentile latency at ``offered_ops`` load (seconds).

    Returns ``math.inf`` when the queue is unstable (offered >= capacity).
    """
    if offered_ops >= capacity_ops:
        return math.inf
    return math.log(1.0 / (1.0 - slo.percentile)) / (capacity_ops - offered_ops)
