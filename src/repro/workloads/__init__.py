"""Workload substrate: the paper's Table I catalog and response models.

The paper evaluates GreenHetero with workloads drawn from SPEC, Cloudsuite,
PARSEC, SPECCPU and Rodinia.  We model each workload's power-performance
behaviour analytically: how strongly its throughput responds to frequency
(compute-bound vs memory/network-bound), how much of a server's dynamic
power envelope it exercises, whether it is latency-SLO constrained, and
whether it has a GPU port (the Rodinia set).
"""

from repro.workloads.catalog import (
    FIG9_WORKLOADS,
    GPU_WORKLOADS,
    INTERACTIVE_WORKLOADS,
    WORKLOADS,
    Workload,
    WorkloadKind,
    get_workload,
    workload_names,
)
from repro.workloads.generator import LoadGenerator, OfferedLoad
from repro.workloads.models import WorkloadResponse, response_for
from repro.workloads.slo import LatencySLO, slo_constrained_throughput

__all__ = [
    "FIG9_WORKLOADS",
    "GPU_WORKLOADS",
    "INTERACTIVE_WORKLOADS",
    "LatencySLO",
    "LoadGenerator",
    "OfferedLoad",
    "WORKLOADS",
    "Workload",
    "WorkloadKind",
    "WorkloadResponse",
    "get_workload",
    "response_for",
    "slo_constrained_throughput",
    "workload_names",
]
