"""Offered-load generation for iterative workload execution.

Within each experiment "a workload can be executed iteratively"
(Section V-A.1): batch and HPC workloads always saturate the servers,
while interactive services see a diurnal request rate that follows the
typical datacenter load pattern the paper takes from [13] (Fig. 6's
demand curve).

:class:`LoadGenerator` turns a normalised intensity pattern (a callable
``time_s -> fraction`` in ``[0, 1]``) plus the workload kind into the
offered load fraction for any simulation time, with optional seeded
jitter so that consecutive epochs are not perfectly smooth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads.catalog import Workload


@dataclass(frozen=True)
class OfferedLoad:
    """Offered load at one instant.

    Attributes
    ----------
    fraction:
        Offered load as a fraction of the workload's full-rack maximum
        throughput, in ``[0, 1]``.
    time_s:
        Simulation time the sample applies to.
    """

    fraction: float
    time_s: float


class LoadGenerator:
    """Generates offered-load fractions over simulation time.

    Parameters
    ----------
    workload:
        Catalog entry; batch/HPC workloads always offer full load.
    pattern:
        Normalised diurnal intensity ``time_s -> [0, 1]`` used for
        interactive workloads.  ``None`` selects a constant 1.0.
    jitter:
        Standard deviation of multiplicative load noise (interactive
        only).  The result is clamped to ``[0, 1]``.
    seed:
        Seed for the jitter RNG; generation is deterministic per seed.
    """

    def __init__(
        self,
        workload: Workload,
        pattern: Callable[[float], float] | None = None,
        jitter: float = 0.02,
        seed: int = 0,
    ) -> None:
        if jitter < 0:
            raise ConfigurationError("jitter must be non-negative")
        self.workload = workload
        self._pattern = pattern
        self._jitter = jitter
        self._rng = np.random.default_rng(seed)

    @property
    def pattern(self) -> Callable[[float], float] | None:
        """The normalised intensity pattern driving interactive load."""
        return self._pattern

    def at(self, time_s: float) -> OfferedLoad:
        """Offered load at ``time_s``."""
        if not self.workload.is_interactive or self._pattern is None:
            return OfferedLoad(fraction=1.0, time_s=time_s)
        base = float(self._pattern(time_s))
        if not 0.0 <= base <= 1.0:
            raise ConfigurationError(
                f"load pattern returned {base} at t={time_s}; must be in [0, 1]"
            )
        if self._jitter > 0.0:
            base *= 1.0 + self._jitter * float(self._rng.standard_normal())
        return OfferedLoad(fraction=min(max(base, 0.0), 1.0), time_s=time_s)

    def series(self, times_s: list[float] | np.ndarray) -> list[OfferedLoad]:
        """Offered load at each time in ``times_s`` (in order)."""
        return [self.at(float(t)) for t in times_s]
