"""Per-(workload, platform) ground-truth response parameters.

The physical prototype in the paper measures, for each server
configuration and workload, how throughput responds to the power the
server is allowed to draw.  Our simulated substrate needs an equivalent
ground truth.  Three workload-level knobs plus a platform capability
score reproduce the qualitative behaviours the paper reports:

``frequency_sensitivity`` (exponent ``a``)
    Throughput scales as ``(f / f_base) ** a``.  Compute-bound kernels
    (Streamcluster, Swaptions) have ``a`` near 1 — they reward every
    extra watt — while memory- or network-bound workloads (Canneal,
    Memcached) have small ``a`` and flatten early.  Because wall power
    grows super-linearly in frequency, the resulting perf-vs-power curve
    is concave with a plateau at the workload's maximum draw, which is
    exactly the shape the paper's quadratic database fit assumes.

``power_intensity``
    Fraction of the platform's dynamic power envelope (peak - idle) the
    workload exercises at full load.  Twitter-style interactive services
    run at low CPU utilisation (Section III-C cites <20%), so their
    maximum draw sits well below the platform peak.

``gpu_speedup``
    For Rodinia workloads: throughput multiplier of the Titan Xp over the
    reference CPU (E5-2620).  Srad_v1 is highly GPU-friendly (the paper
    observes up to 4.6x policy gain on Comb6), Cfd performs about the
    same on CPU and GPU.

Platform capability is ``cores * base_GHz * ipc_factor``, with per-
generation IPC factors, optionally adjusted by a per-workload affinity
table (e.g. SPECjbb mildly favours the high-clocked desktop parts, which
is what makes the i5-4460 the energy-efficiency leader GreenHetero-p
picks first).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import IncompatibleWorkloadError, UnknownWorkloadError
from repro.servers.platform import DeviceClass, ServerSpec
from repro.workloads.catalog import WORKLOADS, Workload, get_workload

#: Per-generation instructions-per-cycle factor relative to Sandy Bridge.
IPC_FACTOR: dict[str, float] = {
    "E5-2620": 1.00,
    "E5-2650": 1.05,
    "E5-2603": 0.90,
    "i7-8700K": 1.30,
    "i5-4460": 1.10,
    "TitanXp": 1.00,  # GPU throughput comes from gpu_speedup instead
}

#: Reference CPU platform used to anchor GPU speedups.
REFERENCE_PLATFORM = "E5-2620"


@dataclass(frozen=True)
class WorkloadResponse:
    """Ground-truth response parameters for one workload.

    Attributes
    ----------
    workload:
        Catalog name.
    base_rate:
        Throughput (in the workload's metric) per unit of platform
        capability at full frequency.
    frequency_sensitivity:
        Exponent ``a`` of throughput vs relative frequency.
    power_intensity:
        Fraction of the dynamic power envelope drawn at full load.
    gpu_speedup:
        Titan Xp throughput relative to the reference CPU; ``None`` when
        the workload has no GPU port.
    affinity:
        Optional per-platform throughput multipliers (default 1.0).
    utilization_scale:
        For interactive services: mean offered load as a fraction of
        rack capacity.  Datacenter services run well below saturation
        (Section III-C cites Twitter clusters under 20% CPU
        utilisation); a low scale means the surviving servers can absorb
        re-routed load, which is why heterogeneity-aware allocation
        helps Memcached least (Fig. 9).  Ignored for batch workloads.
    """

    workload: str
    base_rate: float
    frequency_sensitivity: float
    power_intensity: float
    gpu_speedup: float | None = None
    affinity: dict[str, float] = field(default_factory=dict)
    utilization_scale: float = 1.0
    single_threaded: bool = False

    def capability(self, spec: ServerSpec) -> float:
        """Abstract compute capability of ``spec`` for this workload.

        Single-threaded workloads (SPECCPU's Mcf) see only one core, so
        the high-clocked desktop parts beat the many-core Xeons.
        """
        ipc = IPC_FACTOR.get(spec.name, 1.0)
        ghz = spec.base_frequency_hz / 1e9
        cores = 1 if self.single_threaded else spec.cores
        return cores * ghz * ipc * self.affinity.get(spec.name, 1.0)

    def max_throughput(self, spec: ServerSpec) -> float:
        """Full-frequency throughput of this workload on ``spec``.

        Raises
        ------
        IncompatibleWorkloadError
            If ``spec`` is a GPU and the workload has no GPU port.
        """
        if spec.device_class is DeviceClass.GPU:
            if self.gpu_speedup is None:
                raise IncompatibleWorkloadError(
                    f"workload {self.workload!r} has no GPU port and cannot "
                    f"run on {spec.name}"
                )
            from repro.servers.platform import get_platform

            reference = get_platform(REFERENCE_PLATFORM)
            return self.gpu_speedup * self.base_rate * self.capability(reference)
        return self.base_rate * self.capability(spec)

    def runs_on(self, spec: ServerSpec) -> bool:
        """Whether this workload can execute on ``spec`` at all."""
        return spec.device_class is DeviceClass.CPU or self.gpu_speedup is not None


def _resp(
    name: str,
    base_rate: float,
    a: float,
    intensity: float,
    gpu: float | None = None,
    affinity: dict[str, float] | None = None,
    util: float = 1.0,
) -> WorkloadResponse:
    return WorkloadResponse(
        workload=name,
        base_rate=base_rate,
        frequency_sensitivity=a,
        power_intensity=intensity,
        gpu_speedup=gpu,
        affinity=affinity or {},
        utilization_scale=util,
    )


#: Calibrated response table.  ``base_rate`` magnitudes are per-metric and
#: arbitrary; only ratios across platforms matter to the allocator.
_RESPONSES: dict[str, WorkloadResponse] = {
    r.workload: r
    for r in (
        # Interactive services.  SPECjbb is benchmark-driven near
        # capacity and exercises most of the envelope; Web-search and
        # Memcached run at datacenter-typical low utilisation and barely
        # respond to frequency (network/memory bound), so the surviving
        # servers can absorb their re-routed load — heterogeneity-aware
        # allocation helps them least (Fig. 9: Memcached worst, ~1.2x).
        _resp("SPECjbb", 1000.0, 0.80, 0.66, affinity={"i5-4460": 1.18, "i7-8700K": 1.10}),
        _resp("Web-search", 120.0, 0.50, 0.52, util=0.70),
        _resp("Memcached", 40000.0, 0.30, 0.42, util=0.50),
        # PARSEC.  Streamcluster is memory-bandwidth hungry — the
        # dual-socket Xeon's four channels make it the platform to feed
        # first, so uniform allocation (which starves it) loses the most
        # (best gain, ~2.2x).  Canneal is memory-bound with a flat
        # response, making misallocated watts pure waste (best EPU gain,
        # ~2.7x).
        _resp(
            "Streamcluster", 900.0, 0.97, 0.95, gpu=5.0,
            affinity={"E5-2620": 1.25, "E5-2650": 1.15, "i5-4460": 0.80, "i7-8700K": 0.85},
        ),
        _resp("Freqmine", 750.0, 0.80, 0.90),
        _resp("Blackscholes", 1200.0, 0.85, 0.88),
        _resp("Bodytrack", 800.0, 0.80, 0.85),
        _resp("Swaptions", 1100.0, 0.90, 0.92),
        _resp("Vips", 950.0, 0.75, 0.87),
        _resp("X264", 850.0, 0.80, 0.90),
        # Canneal's simulated-annealing routing is memory-latency bound:
        # the newer desktop parts' faster uncore wins, the many-core
        # Xeons add little, and its frequency response is nearly flat —
        # so watts sprayed uniformly at the Xeons are pure waste, giving
        # the best EPU gain of the suite (Fig. 10).
        _resp(
            "Canneal", 500.0, 0.40, 0.35,
            affinity={"E5-2620": 0.50, "E5-2650": 0.55, "i5-4460": 1.30, "i7-8700K": 1.40},
        ),
        # SPECCPU HPC representative: single-threaded pointer chasing —
        # one busy core draws a modest fraction of the envelope and
        # memory stalls flatten the frequency response, so the allocator
        # has less leverage (Fig. 9 reports only ~1.3x for Mcf).
        WorkloadResponse(
            workload="Mcf",
            base_rate=600.0,
            frequency_sensitivity=0.55,
            power_intensity=0.35,
            single_threaded=True,
        ),
        # Rodinia kernels with GPU ports.  Srad_v1 is extremely
        # GPU-friendly; Cfd performs about the same on CPU and GPU
        # (Fig. 14: smallest gain).
        _resp("Srad_v1", 700.0, 0.90, 0.90, gpu=11.0),
        _resp("Particlefilter", 650.0, 0.85, 0.88, gpu=6.5),
        _resp("Cfd", 720.0, 0.80, 0.90, gpu=1.25),
    )
}


def response_for(workload: str | Workload) -> WorkloadResponse:
    """The ground-truth response parameters for ``workload``.

    Raises
    ------
    UnknownWorkloadError
        If the workload is not in the catalog.
    """
    name = workload.name if isinstance(workload, Workload) else workload
    canonical = get_workload(name).name  # validates + canonicalises case
    try:
        return _RESPONSES[canonical]
    except KeyError:  # pragma: no cover - catalog and table kept in sync
        raise UnknownWorkloadError(canonical, tuple(_RESPONSES)) from None


def register_workload(workload: Workload, response: WorkloadResponse) -> None:
    """Add a user-defined workload to the catalog and response table.

    Lets adopters profile their own applications against the simulated
    substrate.

    Raises
    ------
    UnknownWorkloadError
        If the catalog already has the name, or the catalog entry and
        response disagree on it.
    """
    if workload.name in WORKLOADS:
        raise UnknownWorkloadError(
            f"workload {workload.name!r} already registered"
        )
    if response.workload != workload.name:
        raise UnknownWorkloadError(
            f"response is for {response.workload!r}, not {workload.name!r}"
        )
    WORKLOADS[workload.name] = workload
    _RESPONSES[workload.name] = response


def _check_tables_in_sync() -> None:
    missing = set(WORKLOADS) - set(_RESPONSES)
    extra = set(_RESPONSES) - set(WORKLOADS)
    if missing or extra:  # pragma: no cover - import-time self check
        raise UnknownWorkloadError(
            f"response table out of sync with catalog: missing={missing}, extra={extra}"
        )


_check_tables_in_sync()
