"""GreenHetero: adaptive power allocation for heterogeneous green datacenters.

This package is a from-scratch reproduction of the system described in

    Cai, Cao, Jiang, Wang. "GreenHetero: Adaptive Power Allocation for
    Heterogeneous Green Datacenters." ICDCS 2021.

The library is organised as a set of substrates plus the paper's core
contribution:

``repro.servers``
    Heterogeneous server platform models (Table II), DVFS power-state
    ladders, and the ground-truth power -> performance response surfaces
    the controller can only observe through sampling.

``repro.workloads``
    The datacenter workload catalog (Table I): batch, interactive
    (latency-SLO constrained), HPC and GPU workloads, with per-platform
    affinity.

``repro.power``
    The energy substrate: solar farm, battery bank, budget-capped grid,
    and the PDU/ATS power-distribution tree.

``repro.traces``
    Synthetic NREL-style irradiance traces and diurnal rack-load patterns.

``repro.core``
    The GreenHetero contribution: Holt predictor, profiling database,
    PAR solver, power-source selection, enforcer, and the five power
    allocation policies of Table III.

``repro.sim``
    The discrete-time (15-minute epoch / 2-minute sub-step) simulation
    engine and experiment harness.

``repro.analysis``
    Metrics (EPU, normalized performance) and paper-figure reporting.

Quickstart
----------
>>> from repro import run_experiment, ExperimentConfig
>>> cfg = ExperimentConfig.fig8_default()
>>> result = run_experiment(cfg)
"""

from repro._version import __version__
from repro.core.controller import GreenHeteroController
from repro.core.database import ProfilingDatabase
from repro.core.epu import effective_power_utilization
from repro.core.policies import (
    GreenHeteroAdaptivePolicy,
    GreenHeteroPolicy,
    GreenHeteroPriorityPolicy,
    GreenHeteroStaticPolicy,
    ManualPolicy,
    Policy,
    UniformPolicy,
    make_policy,
)
from repro.core.predictor import HoltPredictor
from repro.core.solver import PARSolver
from repro.sim.engine import Simulation
from repro.sim.experiment import ExperimentConfig, ExperimentResult, run_experiment
from repro.sim.runner import run_experiments

__all__ = [
    "__version__",
    "ExperimentConfig",
    "ExperimentResult",
    "GreenHeteroAdaptivePolicy",
    "GreenHeteroController",
    "GreenHeteroPolicy",
    "GreenHeteroPriorityPolicy",
    "GreenHeteroStaticPolicy",
    "HoltPredictor",
    "ManualPolicy",
    "PARSolver",
    "Policy",
    "ProfilingDatabase",
    "Simulation",
    "UniformPolicy",
    "effective_power_utilization",
    "make_policy",
    "run_experiment",
    "run_experiments",
]
