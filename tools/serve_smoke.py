#!/usr/bin/env python3
"""End-to-end smoke test of the serving daemon (run by CI).

Exercises the full operational story as a real deployment would see it:

1. boot ``repro serve`` as a subprocess with a checkpoint directory,
2. fire a bounded ``loadgen`` burst at it (writes ``BENCH_serve.json``),
3. stop it with SIGTERM and check the shutdown checkpoint exists,
4. boot a second daemon from the same checkpoint directory and verify
   it restores — and that re-checkpointing the restored state writes
   byte-identical learned state (database + predictors).

Exit status is non-zero on any failure.  Usage:

    python tools/serve_smoke.py [--out BENCH_serve.json]
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

#: Child processes must resolve ``repro`` the same way this script does,
#: installed or not.
ENV = {
    **os.environ,
    "PYTHONPATH": os.pathsep.join(
        p for p in (str(ROOT / "src"), os.environ.get("PYTHONPATH")) if p
    ),
}

from repro.serve.loadgen import format_summary, run_loadgen  # noqa: E402

READY_RE = re.compile(r"serving \d+ rack\(s\) on ([\d.]+):(\d+)(.*)")
BOOT_TIMEOUT_S = 120.0
STOP_TIMEOUT_S = 60.0


def start_daemon(checkpoint: Path, audit: Path) -> tuple[subprocess.Popen, int, str]:
    """Boot ``repro serve`` and wait for its readiness line."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0",
            "--racks", "2",
            "--checkpoint", str(checkpoint),
            "--audit-log", str(audit),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=ROOT,
        env=ENV,
    )
    assert proc.stdout is not None
    deadline = time.monotonic() + BOOT_TIMEOUT_S
    while True:
        if time.monotonic() > deadline:
            proc.kill()
            raise SystemExit("daemon did not become ready in time")
        line = proc.stdout.readline()
        if not line:
            proc.wait()
            raise SystemExit(f"daemon exited during boot (rc={proc.returncode})")
        print(f"[daemon] {line.rstrip()}")
        match = READY_RE.match(line.strip())
        if match:
            return proc, int(match.group(2)), match.group(3)


def stop_daemon(proc: subprocess.Popen) -> None:
    """SIGTERM and wait for the graceful checkpoint-and-exit."""
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=STOP_TIMEOUT_S)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise SystemExit("daemon ignored SIGTERM")
    if proc.returncode != 0:
        raise SystemExit(f"daemon exited rc={proc.returncode}")
    assert proc.stdout is not None
    for line in proc.stdout:
        print(f"[daemon] {line.rstrip()}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_serve.json",
                        help="benchmark record path")
    parser.add_argument("--requests", type=int, default=120)
    parser.add_argument("--connections", type=int, default=4)
    args = parser.parse_args()

    tmp = Path(tempfile.mkdtemp(prefix="serve-smoke-"))
    checkpoint = tmp / "checkpoint"
    audit = tmp / "audit.jsonl"

    # --- first life: cold boot, burst, SIGTERM ------------------------
    proc, port, suffix = start_daemon(checkpoint, audit)
    if "restored" in suffix:
        raise SystemExit("first boot claims a restore from an empty directory")
    try:
        from repro.serve.client import ServeClient

        with ServeClient(port=port) as client:
            client.step("rack0")  # learn something worth checkpointing
            client.step("rack1")
        result = run_loadgen(
            port=port,
            connections=args.connections,
            requests=args.requests,
            out=args.out,
        )
        print(format_summary(result))
        if result["errors"]:
            raise SystemExit(f"loadgen saw {result['errors']} errors")
        cache = result["cache_after"]["racks"]["rack0"]["solver_cache"]
        if cache["hits"] == 0:
            raise SystemExit("duplicate queries never hit the solver cache")
    finally:
        stop_daemon(proc)

    manifest = checkpoint / "manifest.json"
    if not manifest.exists():
        raise SystemExit("SIGTERM did not leave a checkpoint manifest")
    saved = {
        p.name: p.read_bytes()
        for p in checkpoint.iterdir()
        if p.name != "manifest.json"
    }
    if not any(name.endswith(".database.json") for name in saved):
        raise SystemExit("checkpoint holds no rack databases")

    # --- second life: restore, re-checkpoint, compare -----------------
    proc, port, suffix = start_daemon(checkpoint, audit)
    try:
        if "restored" not in suffix:
            raise SystemExit("second boot did not restore the checkpoint")
        with ServeClient(port=port) as client:
            status = client.status()
            if not status["restored"]:
                raise SystemExit("daemon status does not report restored=true")
            if status["racks"]["rack0"]["epochs"] < 1:
                raise SystemExit("restored rack lost its epoch counter")
            client.checkpoint()  # nothing ran, so this must be a no-op rewrite
    finally:
        stop_daemon(proc)

    for name, blob in saved.items():
        now = (checkpoint / name).read_bytes()
        if now != blob:
            raise SystemExit(f"restored state re-checkpointed differently: {name}")

    audit_lines = audit.read_text().splitlines()
    print(f"audit stream: {len(audit_lines)} events across both lives")
    print("serve smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
