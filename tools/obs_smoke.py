#!/usr/bin/env python3
"""End-to-end smoke test of the observability subsystem (run by CI).

1. boot ``repro serve`` as a subprocess with an audit log, a periodic
   ``--metrics-interval`` dump, and a ``--trace-log`` span sink,
2. drive traffic covering every instrumented subsystem: epochs
   (scheduler phases + solver), repeated allocates (cache hits), and a
   submit + plan (shift planner),
3. scrape the ``metrics`` protocol verb, parse the Prometheus text
   exposition, and assert the required metric families exist with
   structurally valid histogram series,
4. after SIGTERM, check the audit stream carries metrics snapshots and
   the trace log carries parent/child span records,
5. run the instrumentation-overhead bench (writes ``BENCH_obs.json``)
   and require the < 5% budget to hold.

Exit status is non-zero on any failure.  Usage:

    python tools/obs_smoke.py [--out BENCH_obs.json]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

#: Child processes must resolve ``repro`` the same way this script does,
#: installed or not.
ENV = {
    **os.environ,
    "PYTHONPATH": os.pathsep.join(
        p for p in (str(ROOT / "src"), os.environ.get("PYTHONPATH")) if p
    ),
}

from repro.obs.metrics import parse_exposition  # noqa: E402

READY_RE = re.compile(r"serving \d+ rack\(s\) on ([\d.]+):(\d+)(.*)")
BOOT_TIMEOUT_S = 120.0
STOP_TIMEOUT_S = 60.0

#: Families the scrape must cover: solver, scheduler (span phases),
#: serve verbs, shift planner, predictor fits.
REQUIRED_FAMILIES = (
    "repro_solver_solve_seconds",
    "repro_solver_cache_lookups_total",
    "repro_span_seconds",
    "repro_serve_request_seconds",
    "repro_serve_requests_total",
    "repro_shift_plan_seconds",
    "repro_shift_plans_total",
    "repro_shift_candidates_total",
    "repro_predictor_fits_total",
)

#: Scheduler phases that must appear as span labels after one epoch.
REQUIRED_SPANS = (
    "controller.epoch",
    "scheduler.forecast",
    "scheduler.select",
    "scheduler.solve",
)


def start_daemon(audit: Path, trace_log: Path) -> tuple[subprocess.Popen, int]:
    """Boot an all-batch ``repro serve`` and wait for readiness."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0",
            "--racks", "1",
            "--workload", "Streamcluster",  # deferrable: submit/plan work
            "--audit-log", str(audit),
            "--metrics-interval", "0.2",
            "--trace-log", str(trace_log),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=ROOT,
        env=ENV,
    )
    assert proc.stdout is not None
    deadline = time.monotonic() + BOOT_TIMEOUT_S
    while True:
        if time.monotonic() > deadline:
            proc.kill()
            raise SystemExit("daemon did not become ready in time")
        line = proc.stdout.readline()
        if not line:
            proc.wait()
            raise SystemExit(f"daemon exited during boot (rc={proc.returncode})")
        print(f"[daemon] {line.rstrip()}")
        match = READY_RE.match(line.strip())
        if match:
            return proc, int(match.group(2))


def stop_daemon(proc: subprocess.Popen) -> None:
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=STOP_TIMEOUT_S)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise SystemExit("daemon ignored SIGTERM")
    if proc.returncode != 0:
        raise SystemExit(f"daemon exited rc={proc.returncode}")
    assert proc.stdout is not None
    for line in proc.stdout:
        print(f"[daemon] {line.rstrip()}")


def check_exposition(text: str) -> None:
    """Structural checks over the scraped Prometheus text."""
    families = parse_exposition(text)
    missing = [f for f in REQUIRED_FAMILIES if f not in families]
    if missing:
        raise SystemExit(f"metrics scrape is missing families: {missing}")

    spans = {
        m.group(1)
        for name, labels, _ in families["repro_span_seconds"]["samples"]
        for m in [re.search(r'span="([^"]+)"', labels)]
        if m is not None
    }
    missing_spans = [s for s in REQUIRED_SPANS if s not in spans]
    if missing_spans:
        raise SystemExit(f"span histogram is missing phases: {missing_spans}")

    # Histogram series must be structurally valid: cumulative buckets,
    # +Inf bucket equal to _count, non-zero activity on the hot paths.
    for family in ("repro_solver_solve_seconds", "repro_serve_request_seconds",
                   "repro_shift_plan_seconds"):
        info = families[family]
        if info["kind"] != "histogram":
            raise SystemExit(f"{family} is {info['kind']}, expected histogram")
        by_series: dict[str, list[tuple[float, float]]] = {}
        counts: dict[str, float] = {}
        for name, labels, value in info["samples"]:
            if name.endswith("_bucket"):
                le_match = re.search(r'le="([^"]+)"', labels)
                assert le_match is not None
                le = math.inf if le_match.group(1) == "+Inf" else float(le_match.group(1))
                series = re.sub(r',?le="[^"]+"', "", labels)
                if series == "{}":  # label-less histogram: only le was set
                    series = ""
                by_series.setdefault(series, []).append((le, value))
            elif name.endswith("_count"):
                counts[labels] = value
        if not by_series:
            raise SystemExit(f"{family} exposes no buckets")
        for series, buckets in by_series.items():
            cumulative = [v for _, v in sorted(buckets)]
            if cumulative != sorted(cumulative):
                raise SystemExit(f"{family}{series}: buckets are not cumulative")
            if cumulative[-1] != counts.get(series):
                raise SystemExit(f"{family}{series}: +Inf bucket != _count")
        total = sum(counts.values())
        if total <= 0:
            raise SystemExit(f"{family} recorded no observations")

    hits = sum(
        value
        for _, labels, value in families["repro_solver_cache_lookups_total"]["samples"]
        if 'result="hit"' in labels
    )
    if hits <= 0:
        raise SystemExit("duplicate allocates produced no solver-cache hits")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_obs.json",
                        help="overhead benchmark record path")
    parser.add_argument("--bench-days", type=float, default=1.0)
    parser.add_argument("--bench-repeats", type=int, default=7)
    args = parser.parse_args()

    tmp = Path(tempfile.mkdtemp(prefix="obs-smoke-"))
    audit = tmp / "audit.jsonl"
    trace_log = tmp / "trace.jsonl"

    proc, port = start_daemon(audit, trace_log)
    try:
        from repro.serve.client import ServeClient

        with ServeClient(port=port) as client:
            client.ping()
            client.step("rack0")  # epoch: scheduler phases + solver
            budget = client.allocate("rack0")["budget_w"]
            client.allocate("rack0", budget_w=budget)  # same program: cache hit
            client.allocate("rack0", budget_w=budget)
            clock_s = client.status()["racks"]["rack0"]["clock_s"]
            client.submit("rack0", {
                "job_id": "obs-smoke",
                "energy_wh": 100.0,
                "power_w": 200.0,
                "earliest_start_s": clock_s,
                "deadline_s": clock_s + 24 * 3600.0,
                "value": 1.0,
            })
            client.plan("rack0")  # shift planner metrics
            scrape = client.metrics()
        if not scrape["families"]:
            raise SystemExit("metrics verb reported no families")
        check_exposition(scrape["text"])
        print(f"metrics scrape: {len(scrape['families'])} families, "
              f"{len(scrape['text'].splitlines())} exposition lines — OK")
        time.sleep(0.5)  # let at least one periodic metrics dump land
    finally:
        stop_daemon(proc)

    metrics_events = [
        json.loads(line)
        for line in audit.read_text().splitlines()
        if json.loads(line).get("event") == "metrics"
    ]
    if not metrics_events:
        raise SystemExit("--metrics-interval wrote no metrics events")
    if "repro_serve_request_seconds" not in metrics_events[-1]["snapshot"]:
        raise SystemExit("metrics snapshot lacks the serve-verb histogram")
    print(f"audit stream: {len(metrics_events)} periodic metrics snapshots — OK")

    spans = [json.loads(line) for line in trace_log.read_text().splitlines()]
    if not spans:
        raise SystemExit("--trace-log wrote no spans")
    by_id = {s["span_id"]: s for s in spans}
    children = [s for s in spans if s["parent_id"] is not None]
    if not children:
        raise SystemExit("no nested spans recorded")
    for child in children:
        parent = by_id.get(child["parent_id"])
        if parent is not None and parent["trace_id"] != child["trace_id"]:
            raise SystemExit("child span does not share its parent's trace id")
    print(f"trace log: {len(spans)} spans, {len(children)} nested — OK")

    from repro.obs.bench import run_obs_bench

    payload = run_obs_bench(
        days=args.bench_days, repeats=args.bench_repeats, out=args.out
    )
    print(
        f"obs overhead: {payload['overhead_fraction']:+.2%} "
        f"(budget {payload['overhead_budget']:.0%})"
    )
    if not payload["pass"]:
        raise SystemExit("instrumentation overhead exceeds the 5% budget")
    print("obs smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
