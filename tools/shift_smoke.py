#!/usr/bin/env python3
"""End-to-end smoke test of the temporal-shifting subsystem (run by CI).

Two halves, mirroring how the subsystem ships:

1. **Benchmark**: run ``repro shift`` over a day of PV trace and assert
   the planner actually shifts — grid energy saved vs the
   run-immediately baseline, with zero deadline misses in either arm
   (writes ``BENCH_shift.json`` for CI to archive).
2. **Serving**: boot ``repro serve`` with a deferrable (batch) workload
   and a checkpoint directory, submit jobs over the wire, plan, execute
   epochs, SIGTERM; then boot a second daemon from the checkpoint and
   verify (a) the restored planner reproduces the pre-restart plan
   decision-for-decision, and (b) re-checkpointing the restored state —
   queue still non-empty — writes byte-identical state documents.

Exit status is non-zero on any failure.  Usage:

    python tools/shift_smoke.py [--out BENCH_shift.json]
"""

from __future__ import annotations

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

#: Child processes must resolve ``repro`` the same way this script does,
#: installed or not.
ENV = {
    **os.environ,
    "PYTHONPATH": os.pathsep.join(
        p for p in (str(ROOT / "src"), os.environ.get("PYTHONPATH")) if p
    ),
}

READY_RE = re.compile(r"serving \d+ rack\(s\) on ([\d.]+):(\d+)(.*)")
BOOT_TIMEOUT_S = 120.0
STOP_TIMEOUT_S = 60.0


def run_bench(out: str, days: float, seed: int) -> None:
    """Half 1: the benchmark must show real savings and no misses."""
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.cli", "shift",
            "--days", str(days),
            "--seed", str(seed),
            "--out", out,
        ],
        cwd=ROOT,
        env=ENV,
    )
    if proc.returncode != 0:
        raise SystemExit(f"repro shift exited rc={proc.returncode}")
    payload = json.loads(Path(ROOT / out).read_text())
    grid = payload["comparison"]["grid_kwh"]
    misses = payload["comparison"]["deadline_misses"]
    if grid["saved"] <= 0:
        raise SystemExit(
            f"shifting saved no grid energy: shift {grid['shift']} kWh "
            f"vs no_shift {grid['no_shift']} kWh"
        )
    if misses["shift"] != 0 or misses["no_shift"] != 0:
        raise SystemExit(f"deadline misses: {misses}")
    print(
        f"bench: saved {grid['saved']:.3f} kWh "
        f"({100.0 * grid['saved_fraction']:.1f}%), zero misses"
    )


def start_daemon(checkpoint: Path) -> tuple[subprocess.Popen, int, str]:
    """Boot ``repro serve`` with a batch workload, wait for readiness."""
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0",
            "--workload", "Streamcluster",
            "--checkpoint", str(checkpoint),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=ROOT,
        env=ENV,
    )
    assert proc.stdout is not None
    deadline = time.monotonic() + BOOT_TIMEOUT_S
    while True:
        if time.monotonic() > deadline:
            proc.kill()
            raise SystemExit("daemon did not become ready in time")
        line = proc.stdout.readline()
        if not line:
            proc.wait()
            raise SystemExit(f"daemon exited during boot (rc={proc.returncode})")
        print(f"[daemon] {line.rstrip()}")
        match = READY_RE.match(line.strip())
        if match:
            return proc, int(match.group(2)), match.group(3)


def stop_daemon(proc: subprocess.Popen) -> None:
    """SIGTERM and wait for the graceful checkpoint-and-exit."""
    proc.send_signal(signal.SIGTERM)
    try:
        proc.wait(timeout=STOP_TIMEOUT_S)
    except subprocess.TimeoutExpired:
        proc.kill()
        raise SystemExit("daemon ignored SIGTERM")
    if proc.returncode != 0:
        raise SystemExit(f"daemon exited rc={proc.returncode}")
    assert proc.stdout is not None
    for line in proc.stdout:
        print(f"[daemon] {line.rstrip()}")


def run_serve_cycle() -> None:
    """Half 2: submit/plan/step over the wire, then restore and compare."""
    from repro.serve.client import ServeClient

    tmp = Path(tempfile.mkdtemp(prefix="shift-smoke-"))
    checkpoint = tmp / "checkpoint"

    # --- first life: submit jobs, plan, execute, SIGTERM --------------
    proc, port, suffix = start_daemon(checkpoint)
    try:
        with ServeClient(port=port) as client:
            rack = client.racks()[0]
            clock_s = client.queue_status(rack)["clock_s"]
            # Staggered earliest starts keep a pending backlog alive
            # across the SIGTERM so the restore path is non-trivial.
            for i in range(3):
                client.submit(
                    rack,
                    {
                        "job_id": f"smoke-{i}",
                        "energy_wh": 150.0,
                        "power_w": 300.0,
                        "earliest_start_s": clock_s + i * 2 * 3600.0,
                        "deadline_s": clock_s + 12 * 3600.0,
                        "value": 1.0,
                    },
                )
            client.step(rack)
            client.step(rack)
            plan_before = client.plan(rack)
            queue_before = client.queue_status(rack)
            if queue_before["jobs"]["pending"] + queue_before["jobs"]["running"] == 0:
                raise SystemExit("queue drained before SIGTERM; smoke needs a backlog")
    finally:
        stop_daemon(proc)

    manifest = checkpoint / "manifest.json"
    if not manifest.exists():
        raise SystemExit("SIGTERM did not leave a checkpoint manifest")
    saved = {
        p.name: p.read_bytes()
        for p in checkpoint.iterdir()
        if p.name != "manifest.json"
    }

    # --- second life: restore, re-plan, re-checkpoint, compare --------
    proc, port, suffix = start_daemon(checkpoint)
    try:
        if "restored" not in suffix:
            raise SystemExit("second boot did not restore the checkpoint")
        with ServeClient(port=port) as client:
            queue_after = client.queue_status(rack)
            if queue_after["jobs"] != queue_before["jobs"]:
                raise SystemExit(
                    f"restore changed the queue: {queue_before['jobs']} "
                    f"-> {queue_after['jobs']}"
                )
            plan_after = client.plan(rack)
            if plan_after != plan_before:
                raise SystemExit("restored planner produced a different plan")
            client.checkpoint()  # nothing ran, so this must be a no-op rewrite
    finally:
        stop_daemon(proc)

    for name, blob in saved.items():
        now = (checkpoint / name).read_bytes()
        if now != blob:
            raise SystemExit(f"restored state re-checkpointed differently: {name}")
    print("serve: plan deterministic across restore, checkpoint byte-identical")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_shift.json",
                        help="benchmark record path")
    parser.add_argument("--days", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=2021)
    args = parser.parse_args()

    run_bench(args.out, args.days, args.seed)
    run_serve_cycle()
    print("shift smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
