#!/usr/bin/env python3
"""End-to-end smoke test of the correctness harness (run by CI).

Three gates, in the order a regression would surface:

1. **Strict reference simulations**: the paper's standard stack, run
   end-to-end with the invariant auditor in strict mode, once under the
   default grid-backed supply and once in the constrained-supply
   (``supply_fractions``) regime.  Zero violations required.
2. **Differential solver corpus**: 200 seeded randomized PAR programs
   solved with each mechanism forced (KKT / grid / SLSQP) and
   cross-checked for feasibility and agreement.
3. **Checkpoint round-trip fuzzing**: serve/shift state documents must
   be serialization fixed points under randomized state.

Writes ``BENCH_verify.json`` for CI to archive.  Exit status is
non-zero on any failure.  Usage:

    python tools/verify_smoke.py [--out BENCH_verify.json]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_verify.json",
                        help="benchmark record path")
    parser.add_argument("--cases", type=int, default=200,
                        help="differential corpus size")
    parser.add_argument("--fuzz-cases", type=int, default=50,
                        help="round-trip fuzzer iterations")
    parser.add_argument("--epochs", type=int, default=16,
                        help="epochs per strict reference simulation")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    from repro.verify import (
        fuzz_round_trips,
        run_differential,
        run_strict_reference,
    )

    failures: list[str] = []
    payload: dict = {"gates": {}}

    start = time.perf_counter()
    references = run_strict_reference(n_epochs=args.epochs, seed=args.seed)
    payload["gates"]["reference"] = {
        "elapsed_s": round(time.perf_counter() - start, 3),
        "modes": {r.mode: r.audit for r in references},
    }
    for result in references:
        print(result.summary())
        if not result.passed:
            failures.append(result.summary())

    start = time.perf_counter()
    diff = run_differential(n_cases=args.cases, seed=args.seed)
    payload["gates"]["differential"] = {
        "elapsed_s": round(time.perf_counter() - start, 3),
        "n_cases": diff.n_cases,
        "n_failures": len(diff.failures),
    }
    print(diff.summary())
    if not diff.passed:
        failures.append(diff.summary())

    start = time.perf_counter()
    fuzz = fuzz_round_trips(n_cases=args.fuzz_cases, seed=args.seed)
    payload["gates"]["fuzz"] = {
        "elapsed_s": round(time.perf_counter() - start, 3),
        "n_round_trips": fuzz.n_cases,
        "n_failures": len(fuzz.failures),
    }
    print(fuzz.summary())
    if not fuzz.passed:
        failures.append(fuzz.summary())

    payload["passed"] = not failures
    Path(args.out).write_text(json.dumps(payload, indent=2, sort_keys=True))
    print(f"wrote benchmark record to {args.out}")

    if failures:
        raise SystemExit("verify smoke FAILED:\n" + "\n".join(failures))
    print("verify smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
